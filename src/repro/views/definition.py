"""View definitions, materialized view states and the view registry.

A :class:`ViewDef` is a named conjunctive query over the base schema --
``V1(pid, follower) :- friend(follower, pid)`` -- together with the
access rules the *view* offers once materialized (``V1(pid -> 64)``:
given a pid, at most 64 follower rows).  A :class:`ViewSet` registers
definitions against one base :class:`~repro.relational.schema.DatabaseSchema`,
versioned so plan caches can key on the registered population, and owns
the per-database :class:`ViewState` materializations.

Materialization and maintenance reuse the batched operator pipeline
end to end:

* the *maintenance plan* is the view's query compiled under a permissive
  access schema (one full-relation rule per base table), so the initial
  fill is one :func:`~repro.core.executor.execute_plan_counting` pass --
  per-answer derivation multiplicities, the state signed deltas compose
  against;
* a *refresh* reads the database's change-log slice past the view's
  watermark and runs :func:`~repro.core.executor.execute_plan_delta` --
  the standard telescoping delta rule -- folding the signed changes into
  the counts instead of recomputing the join.  For the common
  single-atom view (an inverted edge index, say) this touches zero
  stored tuples: the whole refresh is an in-memory join against the
  slice.

Every refresh that changes the answer appends the set-level net (rows
entering/leaving the view) to the state's *answer ledger*, keyed by the
base change-log watermarks it spans.  :meth:`ViewState.changes_since`
replays that ledger so incremental query results over view-assisted
plans can treat a view exactly like a base relation: its answer delta
rides in the execution context's change slice under the view's name.
Like the database's :class:`~repro.relational.instance.ChangeLog`, the
ledger never truncates -- compaction would invalidate outstanding
result watermarks.
"""

from __future__ import annotations

import threading
from typing import Iterable, Iterator, Mapping, Sequence

from repro.core.access_schema import (
    AccessRule,
    AccessSchema,
    EmbeddedAccessRule,
    FullAccessRule,
    parse_access_schema,
)
from repro.core.executor import (
    ExecutionContext,
    execute_plan_counting,
    execute_plan_delta,
)
from repro.core.plans import Plan, compile_plan
from repro.errors import RewritingError, SchemaError
from repro.logic.cq import ConjunctiveQuery
from repro.logic.parser import parse_query
from repro.relational.instance import AccessStats, Database, _plain
from repro.relational.schema import DatabaseSchema, RelationSchema

Row = tuple[object, ...]

#: The per-fetch bound of the permissive access schema maintenance plans
#: compile against.  Materializing a view is an offline, O(database) job
#: by design, so the bound only has to be "effectively unbounded".
MAINTENANCE_SCAN_BOUND = 1 << 30


def maintenance_access(schema: DatabaseSchema) -> AccessSchema:
    """A permissive access schema over ``schema``: every relation readable
    in full.  Under it every (safe, satisfiable) conjunctive query is
    controlled, so view definitions compile to ordinary fetch/probe plans
    -- full scan at the root, indexed joins below -- and inherit the
    executor's batched and delta faces for free."""
    return AccessSchema(
        schema,
        tuple(FullAccessRule(name, MAINTENANCE_SCAN_BOUND) for name in schema.names),
    )


class ViewDef:
    """A named conjunctive query over the base schema, plus the access
    rules its materialization offers.

    ``query`` may be a :class:`~repro.logic.cq.ConjunctiveQuery` or query
    text (the head name in the text is cosmetic; the view's name is
    ``name``).  The head variables become the view relation's attributes,
    so they must be distinct -- a repeated head variable has no
    well-defined column and raises :class:`~repro.errors.RewritingError`
    here, at definition time, never at first execute.

    ``access`` declares the bounded access paths of the materialized
    view, as rule objects or DSL text parsed against the view's relation
    schema (e.g. ``"V1(pid -> 64)"``).  Only plain and full rules are
    allowed; an embedded rule on a view has no meaning (the view stores
    full answer rows).  A view with no rules can still be materialized
    and probed, but offers the planner no way to *bind* new variables.
    """

    __slots__ = ("name", "query", "relation", "rules")

    def __init__(
        self,
        name: str,
        query: ConjunctiveQuery | str,
        access: str | Iterable[AccessRule] | None = None,
    ):
        if not name or not name.isidentifier():
            raise SchemaError(
                f"view name must be a non-empty identifier, got {name!r}"
            )
        self.name = name
        if isinstance(query, str):
            query = parse_query(query)
        if not isinstance(query, ConjunctiveQuery):
            raise RewritingError(
                f"a view is defined by a single conjunctive query, "
                f"got {type(query).__name__}"
            )
        if not query.body:
            raise RewritingError(
                f"view {name!r} needs at least one body atom; an empty "
                f"body defines no relation over the base schema"
            )
        seen = set()
        for variable in query.head:
            if variable in seen:
                raise RewritingError(
                    f"view {name!r} repeats head variable ?{variable}: view "
                    f"columns are named by the head, so every head variable "
                    f"must be distinct (add an explicit equality instead)"
                )
            seen.add(variable)
        self.query = query
        self.relation = RelationSchema(name, tuple(v.name for v in query.head))
        self.rules = self._coerce_rules(access)

    def _coerce_rules(
        self, access: str | Iterable[AccessRule] | None
    ) -> tuple[AccessRule, ...]:
        if access is None:
            return ()
        if isinstance(access, str):
            parsed = parse_access_schema(DatabaseSchema([self.relation]), access)
            rules = tuple(parsed)
        else:
            rules = tuple(access)
        for rule in rules:
            if not isinstance(rule, AccessRule):
                raise SchemaError(f"{rule!r} is not an AccessRule")
            if isinstance(rule, EmbeddedAccessRule):
                raise SchemaError(
                    f"view {self.name!r}: embedded access rules are not "
                    f"supported on views (a materialized view stores full "
                    f"answer rows; declare a plain rule instead)"
                )
            if rule.relation != self.name:
                raise SchemaError(
                    f"view {self.name!r}: access rule {rule} is declared on "
                    f"relation {rule.relation!r}, not on the view"
                )
            rule.validate(DatabaseSchema([self.relation]))
        return rules

    def validate(self, schema: DatabaseSchema) -> None:
        """Check the defining query against the *base* ``schema``: every
        body relation must exist there with the right arity.  (Views over
        views are intentionally unsupported: a view is defined over base
        tables only, so its maintenance plan reads the change log
        directly.)"""
        try:
            schema.validate_query(self.query)
        except SchemaError as exc:
            raise SchemaError(
                f"view {self.name!r} is not definable over the base "
                f"schema: {exc}"
            ) from exc
        if self.name in schema:
            raise SchemaError(
                f"view name {self.name!r} collides with a base relation"
            )

    def maintenance_plan(self, schema: DatabaseSchema) -> Plan:
        """The view's query compiled under the permissive access schema:
        the plan materialization and every refresh execute through."""
        return compile_plan(self.query, maintenance_access(schema), ())

    def __repr__(self) -> str:
        return f"ViewDef({self.name!r}, {str(self.query)!r})"

    def __str__(self) -> str:
        head = ", ".join(v.name for v in self.query.head)
        body = str(self.query).split(" <- ", 1)
        definition = body[1] if len(body) == 2 else ""
        return f"{self.name}({head}) <- {definition}"


class ViewState:
    """One view's materialization against one database: the answer rows
    (with derivation counts), lazily built per-position hash indexes, the
    change-log watermark the answers are valid at, and the answer ledger
    refreshes append to.

    The read surface mirrors :class:`~repro.relational.instance.Database`
    (``lookup`` / ``lookup_many`` / ``contains`` / ``contains_many`` with
    distinct-key accounting) so the view operators in
    :mod:`repro.core.executor` treat a view store exactly like an indexed
    relation -- but accesses are charged only to the stats object the
    caller passes (the per-execution context), never to the database's
    cumulative counters: view reads are not base-table accesses.
    """

    __slots__ = (
        "view",
        "db",
        "plan",
        "watermark",
        "origin",
        "counts",
        "last_stats",
        "_order",
        "_indexes",
        "_ledger",
    )

    def __init__(self, view: ViewDef, db: Database, plan: Plan | None = None):
        self.view = view
        self.db = db
        self.plan = view.maintenance_plan(db.schema) if plan is None else plan
        # Snapshot the watermark before executing: mutations are
        # single-writer by contract, so the counting pass sees exactly
        # the state at this watermark.
        self.watermark = db.change_log.watermark
        self.origin = self.watermark
        ctx = ExecutionContext(db, watermark=self.watermark)
        self.counts: dict[Row, int] = execute_plan_counting(self.plan, ctx, {})
        self.last_stats = ctx.stats
        self._order: dict[Row, None] = dict.fromkeys(self.counts)
        self._indexes: dict[tuple[int, ...], dict[Row, list[Row]]] = {}
        self._ledger: list[tuple[int, int, dict[Row, int]]] = []

    def __repr__(self) -> str:
        return (
            f"ViewState({self.view.name!r}, {len(self._order)} rows, "
            f"watermark={self.watermark})"
        )

    def __len__(self) -> int:
        return len(self._order)

    @property
    def rows(self) -> tuple[Row, ...]:
        """The current answer rows, in first-derivation order."""
        return tuple(self._order)

    # -- maintenance -----------------------------------------------------

    def refresh(self) -> dict[Row, int]:
        """Bring the materialization up to date with the database's change
        log by running the delta pipeline over the slice past the view's
        watermark, and return the set-level net (``row -> +1`` entered,
        ``-1`` left; empty when the slice changed nothing).

        A single-atom view refreshes without touching stored tuples at
        all -- the delta level joins the in-memory slice and there is no
        old-state suffix; deeper views pay bounded prefix/suffix work per
        changed level, never a recompute.
        """
        log = self.db.change_log
        now = log.watermark
        if now == self.watermark:
            return {}
        from_w = self.watermark
        delta = log.net_since(from_w)
        net: dict[Row, int] = {}
        if delta:
            ctx = ExecutionContext(
                self.db,
                watermark=from_w,
                delta=delta,
                caches=log.slice_caches(from_w),
            )
            changes = execute_plan_delta(self.plan, ctx, seed={})
            for row, change in changes.items():
                old = self.counts.get(row, 0)
                new = old + change
                if new > 0:
                    self.counts[row] = new
                else:
                    self.counts.pop(row, None)
                if old <= 0 < new:
                    net[row] = 1
                elif new <= 0 < old:
                    net[row] = -1
            if net:
                self._apply_net(net)
                self._ledger.append((from_w, now, net))
            self.last_stats = ctx.stats
        self.watermark = now
        return net

    def changes_since(self, watermark: int) -> dict[Row, int] | None:
        """The view's net answer change between base-log ``watermark`` and
        the view's current watermark, replayed from the answer ledger --
        or None when the ledger cannot answer (the watermark predates the
        materialization, postdates it, or falls strictly inside one
        refresh's span), in which case the caller must recompute."""
        if watermark == self.watermark:
            return {}
        if watermark < self.origin or watermark > self.watermark:
            return None
        net: dict[Row, int] = {}
        for from_w, to_w, entry in self._ledger:
            if from_w >= watermark:
                for row, sign in entry.items():
                    merged = net.get(row, 0) + sign
                    if merged:
                        net[row] = merged
                    else:
                        net.pop(row, None)
            elif to_w > watermark:
                # The requested watermark falls inside this refresh's
                # span: its net cannot be split after the fact.
                return None
        return net

    def _apply_net(self, net: Mapping[Row, int]) -> None:
        """Fold set-level changes into the ordered row set and every
        already-built index (mirroring the database's in-place index
        maintenance)."""
        for row, sign in net.items():
            if sign > 0:
                self._order[row] = None
                for positions, index in self._indexes.items():
                    key = tuple(row[p] for p in positions)
                    index.setdefault(key, []).append(row)
            else:
                self._order.pop(row, None)
                for positions, index in self._indexes.items():
                    key = tuple(row[p] for p in positions)
                    group = index.get(key)
                    if group is not None:
                        group.remove(row)
                        if not group:
                            del index[key]

    # -- reads (charged to the caller's stats only) ----------------------

    def lookup(
        self, pattern: Mapping[int, object], stats: AccessStats | None = None
    ) -> tuple[Row, ...]:
        """All view rows matching ``pattern`` (positions -> values); an
        empty pattern is a full view scan, counted as such."""
        if not pattern:
            rows = tuple(self._order)
            self._charge(stats, tuples=len(rows), scans=1)
            return rows
        positions = tuple(sorted(pattern))
        self._check_positions(positions)
        index = self._index_for(positions)
        key = tuple(_plain(pattern[p]) for p in positions)
        rows = tuple(index.get(key, ()))
        self._charge(stats, tuples=len(rows), lookups=1)
        return rows

    def lookup_many(
        self,
        patterns: Sequence[Mapping[int, object]],
        stats: AccessStats | None = None,
    ) -> tuple[tuple[Row, ...], ...]:
        """Bulk :meth:`lookup`: each distinct ``(positions, key)`` pair is
        resolved and accounted once, however many patterns share it."""
        patterns = list(patterns)
        if not patterns:
            return ()
        tuples = 0
        lookups = 0
        scans = 0
        groups: list[tuple[Row, ...]] = []
        fetched: dict[tuple[tuple[int, ...], Row], tuple[Row, ...]] = {}
        scanned: tuple[Row, ...] | None = None
        last_keys = None
        positions: tuple[int, ...] = ()
        index: dict[Row, list[Row]] = {}
        for pattern in patterns:
            if not pattern:
                if scanned is None:
                    scanned = tuple(self._order)
                    tuples += len(scanned)
                    scans += 1
                groups.append(scanned)
                continue
            keys = pattern.keys()
            if keys != last_keys:
                positions = tuple(sorted(keys))
                self._check_positions(positions)
                index = self._index_for(positions)
                last_keys = keys
            key = tuple([_plain(pattern[p]) for p in positions])
            rows = fetched.get((positions, key))
            if rows is None:
                rows = tuple(index.get(key, ()))
                lookups += 1
                tuples += len(rows)
                fetched[positions, key] = rows
            groups.append(rows)
        self._charge(stats, tuples=tuples, lookups=lookups, scans=scans)
        return tuple(groups)

    def lookup_keys(
        self,
        positions: tuple[int, ...],
        keys: Sequence[Row],
        stats: AccessStats | None = None,
    ) -> Sequence[Sequence[Row]]:
        """Bulk :meth:`lookup` in the columnar executor's native shape
        (every key constrains the same sorted ``positions``); the same
        accounting contract as :meth:`lookup_many` -- distinct keys
        resolved and counted once, empty ``positions`` one shared scan.
        Like the database's ``lookup_keys``, the returned groups may be
        live index buckets: read-only, consume before mutating."""
        if not keys:
            return ()
        if not positions:
            rows = tuple(self._order)
            self._charge(stats, tuples=len(rows), scans=1)
            return [rows] * len(keys)
        # Per-operator-per-execution call: one dict probe resolves an
        # already-built index (refresh maintains built indexes), with the
        # validated build path only on first sight of ``positions``.
        index = self._indexes.get(positions)
        if index is None:
            self._check_positions(positions)
            index = self._index_for(positions)
        if len(keys) == 1:
            rows = index.get(keys[0], ())
            if stats is not None:
                stats.tuples_accessed += len(rows)
                stats.indexed_lookups += 1
            return [rows]
        tuples = 0
        lookups = 0
        fetched: dict[Row, Sequence[Row]] = {}
        groups: list[Sequence[Row]] = []
        get_cached = fetched.get
        get_indexed = index.get
        for key in keys:
            rows = get_cached(key)
            if rows is None:
                rows = get_indexed(key, ())
                lookups += 1
                tuples += len(rows)
                fetched[key] = rows
            groups.append(rows)
        self._charge(stats, tuples=tuples, lookups=lookups)
        return groups

    def contains(
        self, row: Sequence[object], stats: AccessStats | None = None
    ) -> bool:
        row = self.view.relation.validate_tuple(tuple(_plain(v) for v in row))
        present = row in self._order
        self._charge(stats, tuples=1 if present else 0, lookups=1)
        return present

    def contains_many(
        self,
        rows: Sequence[Sequence[object]],
        stats: AccessStats | None = None,
    ) -> tuple[bool, ...]:
        validate = self.view.relation.validate_tuple
        tuples = 0
        lookups = 0
        verdicts: list[bool] = []
        probed: dict[Row, bool] = {}
        for row in rows:
            row = validate(tuple(_plain(v) for v in row))
            present = probed.get(row)
            if present is None:
                lookups += 1
                present = row in self._order
                if present:
                    tuples += 1
                probed[row] = present
            verdicts.append(present)
        self._charge(stats, tuples=tuples, lookups=lookups)
        return tuple(verdicts)

    def contains_rows(
        self,
        rows: Sequence[Row],
        stats: AccessStats | None = None,
    ) -> tuple[bool, ...]:
        """Bulk :meth:`contains` for pre-shaped row tuples; distinct rows
        probed and accounted once, like :meth:`contains_many`."""
        tuples = 0
        lookups = 0
        verdicts: list[bool] = []
        probed: dict[Row, bool] = {}
        get_cached = probed.get
        store = self._order
        for row in rows:
            present = get_cached(row)
            if present is None:
                lookups += 1
                present = row in store
                if present:
                    tuples += 1
                probed[row] = present
            verdicts.append(present)
        self._charge(stats, tuples=tuples, lookups=lookups)
        return tuple(verdicts)

    # -- internals -------------------------------------------------------

    def _charge(
        self,
        stats: AccessStats | None,
        *,
        tuples: int = 0,
        lookups: int = 0,
        scans: int = 0,
    ) -> None:
        if stats is not None:
            stats.tuples_accessed += tuples
            stats.indexed_lookups += lookups
            stats.full_scans += scans

    def _check_positions(self, positions: tuple[int, ...]) -> None:
        arity = self.view.relation.arity
        for p in positions:
            if not 0 <= p < arity:
                raise SchemaError(
                    f"position {p} out of range for view {self.view.name!r} "
                    f"of arity {arity}"
                )

    def _index_for(self, positions: tuple[int, ...]) -> dict[Row, list[Row]]:
        index = self._indexes.get(positions)
        if index is None:
            index = {}
            for row in self._order:
                index.setdefault(tuple(row[p] for p in positions), []).append(row)
            self._indexes[positions] = index
        return index


class ViewCatalog:
    """An immutable snapshot of a :class:`ViewSet` at one version: the
    registered definitions plus the extended schema/access they induce.

    Compilation must see one consistent view population end to end --
    the same reason the Engine reads its ``(version, access schema)``
    pair atomically -- so :meth:`ViewSet.snapshot` hands the planner a
    catalog instead of live registry reads: a concurrent register/drop
    can bump the version (stranding the resulting cache key) but can
    never make the rewrite see views the extended schema lacks.
    """

    __slots__ = ("schema", "version", "_defs", "_ext_schema")

    def __init__(
        self, schema: DatabaseSchema, version: int, defs: tuple[ViewDef, ...]
    ):
        self.schema = schema
        self.version = version
        self._defs = defs
        self._ext_schema: DatabaseSchema | None = None

    def __len__(self) -> int:
        return len(self._defs)

    def definitions(self) -> tuple[ViewDef, ...]:
        return self._defs

    def names(self) -> tuple[str, ...]:
        return tuple(view.name for view in self._defs)

    def extended_schema(self) -> DatabaseSchema:
        """The base schema plus one relation per view (memoized; the
        catalog is immutable, so it can never go stale)."""
        extended = self._ext_schema
        if extended is None:
            extended = DatabaseSchema(
                tuple(self.schema) + tuple(view.relation for view in self._defs)
            )
            self._ext_schema = extended
        return extended

    def extended_access(self, access: AccessSchema) -> AccessSchema:
        """``access``'s rules plus every view's rules, over the extended
        schema."""
        return AccessSchema(
            self.extended_schema(),
            tuple(access) + tuple(r for view in self._defs for r in view.rules),
        )


class ViewSet:
    """The registry of view definitions over one base schema, plus their
    per-database materializations.

    Registration and drops bump :attr:`version`; the Engine folds that
    version into every plan-cache key, so registering or dropping a view
    can never serve a plan compiled against a different view population.
    Registry mutation and bookkeeping go through an internal lock;
    materialization and refreshes serialize *per view* (two different
    views prepare in parallel, and preparing one never blocks registry
    reads).  Database mutations stay single-writer by the same contract
    as everywhere else.
    """

    __slots__ = (
        "schema",
        "_lock",
        "_defs",
        "_plans",
        "_states",
        "_state_locks",
        "_version",
        "_catalog",
        "_owner",
    )

    def __init__(self, schema: DatabaseSchema):
        if not isinstance(schema, DatabaseSchema):
            raise SchemaError(f"{schema!r} is not a DatabaseSchema")
        self.schema = schema
        self._lock = threading.Lock()
        self._defs: dict[str, ViewDef] = {}
        self._plans: dict[str, Plan] = {}
        self._states: dict[str, ViewState] = {}
        self._state_locks: dict[str, threading.Lock] = {}
        self._version = 0
        self._catalog: ViewCatalog | None = None
        # Back-reference set by the owning Engine; advise() needs the
        # engine's access schema and cost statistics.
        self._owner = None

    @property
    def version(self) -> int:
        """Bumped on every register/drop; part of the Engine's plan-cache
        keys."""
        return self._version

    def __len__(self) -> int:
        return len(self._defs)

    def __contains__(self, name: object) -> bool:
        return name in self._defs

    def __iter__(self) -> Iterator[ViewDef]:
        return iter(tuple(self._defs.values()))

    def __repr__(self) -> str:
        return f"ViewSet({list(self._defs)!r})"

    def names(self) -> tuple[str, ...]:
        return tuple(self._defs)

    def definitions(self) -> tuple[ViewDef, ...]:
        return tuple(self._defs.values())

    def get(self, name: str) -> ViewDef:
        try:
            return self._defs[name]
        except KeyError:
            raise SchemaError(
                f"unknown view {name!r} "
                f"(registered: {', '.join(self._defs) or 'none'})"
            ) from None

    def state(self, name: str) -> ViewState | None:
        """The current materialization of ``name`` (None before the first
        execution/refresh touches it)."""
        self.get(name)
        return self._states.get(name)

    # -- registration ----------------------------------------------------

    def register(
        self,
        view: ViewDef | str,
        query: ConjunctiveQuery | str | None = None,
        access: str | Iterable[AccessRule] | None = None,
    ) -> ViewDef:
        """Register a view -- either a prebuilt :class:`ViewDef` or
        ``register(name, query, access)`` pieces.

        Everything that can go wrong fails *here*, not at first execute:
        unknown body relations and name collisions raise
        :class:`~repro.errors.SchemaError`; a repeated head variable or an
        empty body raises :class:`~repro.errors.RewritingError`; the
        maintenance plan is compiled eagerly so a malformed definition
        can never be registered at all.
        """
        if not isinstance(view, ViewDef):
            if query is None:
                raise SchemaError(
                    "register() needs a ViewDef or (name, query[, access])"
                )
            view = ViewDef(view, query, access)
        elif query is not None or access is not None:
            raise SchemaError(
                "register() takes either a ViewDef or (name, query[, "
                "access]) pieces, not both"
            )
        view.validate(self.schema)
        with self._lock:
            if view.name in self._defs:
                raise SchemaError(f"view {view.name!r} is already registered")
            plan = view.maintenance_plan(self.schema)
            self._defs[view.name] = view
            self._plans[view.name] = plan
            self._version += 1
            self._catalog = None
        return view

    def advise(self, queries: Iterable[object] = (), *, stats=None, expensive=None):
        """Mine ``queries`` for covering-view opportunities
        (:func:`repro.analysis.advisor.advise_views`): ranked
        :class:`~repro.analysis.advisor.ViewAdvice` proposals -- possibly
        multi-atom -- that would make an uncontrolled query controlled
        (VIW004) or cut a controlled query's estimated cost (VIW005),
        each priced with the cost model and sized from observed
        statistics when available.  Each entry of ``queries`` is query
        text, a query object, a ``PreparedQuery`` or a
        ``(query, parameters)`` pair.  Nothing is registered: feed a
        proposal to :meth:`adopt` to act on it."""
        engine = self._owner
        if engine is None:
            raise SchemaError(
                "advise() needs a ViewSet owned by an Engine (construct "
                "the engine first and use engine.views.advise(...))"
            )
        # Imported lazily: repro.analysis sits above repro.views.
        from repro.analysis.advisor import advise_views

        return advise_views(engine, queries, stats=stats, expensive=expensive)

    def adopt(self, advice) -> ViewDef:
        """Register the view a :class:`~repro.analysis.advisor.ViewAdvice`
        proposes (its definition text under its derived access rule) and
        return the resulting :class:`ViewDef`."""
        return self.register(advice.name, advice.definition, advice.rule)

    def drop(self, name: str) -> ViewDef:
        """Unregister ``name`` and discard its materialization.  Plans
        compiled against it become unreachable (the version bump keys
        them out of every cache)."""
        with self._lock:
            try:
                view = self._defs.pop(name)
            except KeyError:
                raise SchemaError(
                    f"unknown view {name!r} "
                    f"(registered: {', '.join(self._defs) or 'none'})"
                ) from None
            self._plans.pop(name, None)
            self._states.pop(name, None)
            self._state_locks.pop(name, None)
            self._version += 1
            self._catalog = None
        return view

    # -- schema extension (what the view-aware planner compiles against) --

    def snapshot(self) -> ViewCatalog:
        """An immutable ``(version, definitions)`` catalog read in one
        locked step -- what the Engine compiles against, so a concurrent
        register/drop can never mismatch the rewrite and the extended
        schema (memoized per version).

        The memoized read is lock-free: the attribute is replaced
        atomically (reset to None under the registry lock by
        register/drop, rebuilt here), and a reader that observes a
        just-replaced catalog still gets a *consistent* (version,
        definitions) pair -- its plan-cache key is simply stranded by
        the version bump."""
        catalog = self._catalog
        if catalog is not None:
            return catalog
        with self._lock:
            catalog = self._catalog
            if catalog is None:
                catalog = ViewCatalog(
                    self.schema, self._version, tuple(self._defs.values())
                )
                self._catalog = catalog
            return catalog

    def extended_schema(self) -> DatabaseSchema:
        """The base schema plus one relation per registered view (via the
        current :meth:`snapshot`)."""
        return self.snapshot().extended_schema()

    def extended_access(self, access: AccessSchema) -> AccessSchema:
        """``access``'s rules plus every registered view's rules, over the
        extended schema (via the current :meth:`snapshot`)."""
        return self.snapshot().extended_access(access)

    # -- materialization -------------------------------------------------

    def prepare(
        self, db: Database, names: Iterable[str] | None = None
    ) -> dict[str, ViewState]:
        """Materialized-and-fresh states for ``names`` (default: every
        registered view) against ``db``: views never touched before are
        materialized now; existing states are refreshed from the change
        log past their watermark; states bound to a *different* database
        are rebuilt.

        Materialization is O(database) work, so it runs under a *per-view*
        lock, never the registry lock: preparing V1 does not block an
        execute that only reads V2, nor registry reads/compiles.
        """
        if names is not None:
            # Fast path for the per-execute call: every requested view is
            # already materialized against ``db``, still registered and
            # fresh at the current change-log watermark -- serve the
            # existing states without taking any lock.  Each dict read is
            # individually atomic, and a racing register/drop/refresh can
            # only make one of the checks fail (a state's watermark is
            # advanced *after* its rows, at the end of refresh), which
            # drops to the locked slow path below.
            watermark = db.change_log.watermark
            fresh: dict[str, ViewState] | None = {}
            for name in names:
                state = self._states.get(name)
                if (
                    state is None
                    or state.db is not db
                    or state.watermark != watermark
                    or name not in self._defs
                ):
                    fresh = None
                    break
                fresh[name] = state
            if fresh is not None:
                return fresh
        with self._lock:
            if names is None:
                names = tuple(self._defs)
            plans: dict[str, tuple[ViewDef, Plan, threading.Lock]] = {}
            for name in names:
                view = self._defs.get(name)
                if view is None:
                    raise SchemaError(
                        f"unknown view {name!r} "
                        f"(registered: {', '.join(self._defs) or 'none'})"
                    )
                lock = self._state_locks.get(name)
                if lock is None:
                    lock = self._state_locks[name] = threading.Lock()
                plans[name] = (view, self._plans[name], lock)
        states: dict[str, ViewState] = {}
        for name, (view, plan, lock) in plans.items():
            with lock:
                with self._lock:
                    state = self._states.get(name)
                if state is None or state.db is not db:
                    state = ViewState(view, db, plan)
                    with self._lock:
                        # A drop that raced the materialization wins: do
                        # not resurrect the state it already discarded.
                        if name in self._defs:
                            self._states[name] = state
                else:
                    state.refresh()
            states[name] = state
        return states

    def refresh(self, db: Database) -> dict[str, ViewState]:
        """Materialize/refresh every registered view against ``db`` --
        the explicit "bring my views up to date" entry point."""
        return self.prepare(db)

"""Scale independence using views (Fan, Geerts & Libkin 2014, Section 6).

Some queries cannot be answered with boundedly many tuple accesses over
the base tables, whatever the parameters -- there simply is no access
rule pointing the right way.  Section 6's remedy: *materialized views*.
A query is scale independent **using views** when it can be answered
from a set of materialized views plus boundedly many base-table
accesses; the canonical example is an inverted edge index that makes
"who follows ``?p``" bounded even though only the forward direction has
a declared access rule.

The package in three pieces:

* :class:`ViewDef` / :class:`ViewSet` (:mod:`repro.views.definition`) --
  a named conjunctive query over the base schema plus the access rules
  its materialization offers, and the versioned registry the Engine's
  plan-cache keys incorporate.  Registration validates everything
  eagerly: unknown relations, name collisions and repeated head
  variables fail at ``register`` time, never at first execute.
* :class:`ViewState` -- one view's materialization: answer rows with
  derivation counts (via
  :func:`~repro.core.executor.execute_plan_counting` under a permissive
  access schema), lazily built hash indexes, and incremental maintenance
  by :func:`~repro.core.executor.execute_plan_delta` over the database's
  change-log slice past the view's watermark -- a refresh costs
  O(changes), not O(database), and a single-atom view refreshes without
  touching stored tuples at all.  Every refresh appends the set-level
  answer change to a ledger, so incremental *query* results can consume
  view deltas exactly like base-relation slices.
* the rewriter (:mod:`repro.views.rewrite`) -- homomorphism-based
  augmentation: every view whose body maps into the query contributes an
  implied view atom, and the ordinary planner then compiles the
  augmented query against the extended schema, lowering view steps to
  :class:`~repro.core.executor.ViewScanOp` /
  :class:`~repro.core.executor.ViewProbeOp`.

Reached through the facade::

    engine.views.register("V1", "V1(pid, follower) :- friend(follower, pid)",
                          "V1(pid -> 64)")
    engine.execute("Q(x) :- friend(x, p)", p=7)   # bounded, via V1
    engine.database.insert_many("friend", edges)  # views refresh lazily
"""

from repro.views.definition import (
    MAINTENANCE_SCAN_BOUND,
    ViewCatalog,
    ViewDef,
    ViewSet,
    ViewState,
    maintenance_access,
)
from repro.views.rewrite import (
    compile_with_views,
    implied_view_atoms,
    rewrite_with_views,
)

__all__ = [
    "ViewDef",
    "ViewSet",
    "ViewState",
    "ViewCatalog",
    "maintenance_access",
    "MAINTENANCE_SCAN_BOUND",
    "compile_with_views",
    "implied_view_atoms",
    "rewrite_with_views",
]
